"""Tests for the zero-dependency metrics registry."""

import json
import math

import pytest

from repro.obs.metrics import DEFAULT_REGISTRY, Gauge, Histogram, MetricsRegistry, get_registry


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_set_inc_dec():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(10)
    gauge.inc(2)
    gauge.dec(7)
    assert gauge.value == pytest.approx(5.0)


def test_gauge_callback_read_and_failure_to_nan():
    gauge = Gauge()
    gauge.set_function(lambda: 42)
    assert gauge.read() == 42.0
    # A torn-down owner must not break snapshotting.
    gauge.set_function(lambda: 1 / 0)
    assert math.isnan(gauge.read())


def test_histogram_moments_and_quantiles():
    hist = Histogram(buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 3.0, 20.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(25.5)
    assert hist.min == 0.5
    assert hist.max == 20.0
    assert hist.mean == pytest.approx(25.5 / 4)
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(1.0) == 20.0


def test_histogram_buckets_cumulative_with_forced_inf():
    hist = Histogram(buckets=(1.0, 10.0))  # +Inf appended automatically
    for value in (0.5, 2.0, 3.0, 20.0):
        hist.observe(value)
    assert hist.buckets() == {"1": 1, "10": 3, "+Inf": 4}


def test_histogram_empty_quantile_and_mean_are_nan():
    hist = Histogram()
    assert math.isnan(hist.quantile(0.5))
    assert math.isnan(hist.mean)


# ----------------------------------------------------------------------
# Families and labels
# ----------------------------------------------------------------------
def test_labeled_family_hands_out_cached_children():
    registry = MetricsRegistry()
    family = registry.counter("verdicts_total", labels=("detector",))
    child = family.labels(detector="hang")
    child.inc(3)
    # Same label set -> same child instrument.
    assert family.labels(detector="hang") is child
    assert family.labels(detector="slow").value == 0.0


def test_labeled_family_rejects_wrong_label_names():
    family = MetricsRegistry().counter("verdicts_total", labels=("detector",))
    with pytest.raises(ValueError):
        family.labels(node=3)


def test_labeled_family_rejects_unlabeled_use():
    family = MetricsRegistry().counter("verdicts_total", labels=("detector",))
    with pytest.raises(ValueError):
        family.inc()


def test_registration_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("steps_total", "help text")
    second = registry.counter("steps_total")
    assert first is second


def test_registration_rejects_kind_and_label_mismatch():
    registry = MetricsRegistry()
    registry.counter("steps_total")
    with pytest.raises(ValueError):
        registry.gauge("steps_total")
    registry.counter("labeled_total", labels=("kind",))
    with pytest.raises(ValueError):
        registry.counter("labeled_total", labels=("other",))


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_snapshot_is_json_safe_including_nan():
    registry = MetricsRegistry()
    registry.counter("events_total").inc(2)
    registry.gauge("broken").set_function(lambda: 1 / 0)
    registry.histogram("latency_seconds")  # no observations: NaN stats
    snapshot = registry.snapshot()
    # NaN must serialize as null, not crash a strict encoder.
    encoded = json.loads(json.dumps(snapshot, allow_nan=False))
    assert encoded["events_total"]["series"][0]["value"] == 2
    assert encoded["broken"]["series"][0]["value"] is None
    hist = encoded["latency_seconds"]["series"][0]
    assert hist["count"] == 0
    assert hist["mean"] is None


def test_render_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("events_total", "Things that happened").inc(3)
    registry.counter("verdicts_total", labels=("detector",)).labels(
        detector="hang"
    ).inc()
    hist = registry.histogram("latency_seconds", buckets=(1.0, float("inf")))
    hist.observe(0.5)
    text = registry.render_prometheus()
    assert "# HELP events_total Things that happened" in text
    assert "# TYPE events_total counter" in text
    assert "events_total 3" in text
    assert 'verdicts_total{detector="hang"} 1' in text
    assert 'latency_seconds_bucket{le="1"} 1' in text
    assert 'latency_seconds_bucket{le="+Inf"} 1' in text
    assert "latency_seconds_sum 0.5" in text
    assert "latency_seconds_count 1" in text


def test_reset_drops_families():
    registry = MetricsRegistry()
    registry.counter("events_total").inc()
    registry.reset()
    assert registry.families() == []
    # Re-registering after reset starts from zero.
    assert registry.counter("events_total").value == 0.0


def test_get_registry_resolves_default():
    own = MetricsRegistry()
    assert get_registry(own) is own
    assert get_registry(None) is DEFAULT_REGISTRY
