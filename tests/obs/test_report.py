"""Tests for observability snapshots and the text dashboard."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import SNAPSHOT_VERSION, ObservabilityPlane, build_snapshot, render_dashboard
from repro.obs.trace import FaultTracer


def traced_plane():
    plane = ObservabilityPlane()
    tracer = plane.tracer
    tracer.register_fault("s0/f0", "crash", victims=(3,), injected_at=100.0)
    tracer.detection(130.0, victims=[3], kind="hang")
    tracer.action(140.0, victims=[3], ready_at=400.0)
    tracer.register_fault("s0/f1", "crash", victims=(5,), injected_at=50.0)
    tracer.detection(600.0, victims=[9], kind="hang")
    plane.registry.counter("c4d_evaluations_total").inc(7)
    return plane


def test_plane_bundles_registry_and_tracer():
    plane = ObservabilityPlane()
    # The tracer records into the plane's registry, not the default one.
    plane.tracer.register_fault("f0", "crash", injected_at=0.0)
    snapshot = plane.registry.snapshot()
    stage = snapshot["obs_fault_stage_total"]["series"]
    assert {"labels": {"stage": "inject"}, "value": 1.0} in stage


def test_snapshot_layout_and_ordering():
    snapshot = traced_plane().snapshot(meta={"title": "test run", "seed": 7})
    assert snapshot["version"] == SNAPSHOT_VERSION
    assert snapshot["meta"] == {"title": "test run", "seed": 7}
    # Spans sorted by injection time, each carrying its timeline.
    assert [f["fault_id"] for f in snapshot["faults"]] == ["s0/f1", "s0/f0"]
    detected = snapshot["faults"][1]
    assert detected["stages"]["inject"] == 100.0
    assert detected["mttd_seconds"] == 30.0
    assert snapshot["false_positives"][0]["victims"] == ["9"]
    assert snapshot["accounting"]["detected"] == 1
    assert snapshot["metrics"]["c4d_evaluations_total"]["series"][0]["value"] == 7
    # The whole report must survive a strict JSON encoder.
    json.dumps(snapshot, allow_nan=False)


def test_build_snapshot_without_tracer():
    registry = MetricsRegistry()
    registry.gauge("depth").set(4)
    snapshot = build_snapshot(registry)
    assert snapshot["faults"] == []
    assert snapshot["accounting"] == {}
    assert "depth" in snapshot["metrics"]


def test_render_dashboard_sections():
    snapshot = traced_plane().snapshot(meta={"title": "test run"})
    text = render_dashboard(snapshot)
    assert "=== test run ===" in text
    assert "-- fault accounting --" in text
    assert "faults=2 detected=1 missed=1 recovered=1 false_positives=1" in text
    assert "MTTD: n=1" in text
    assert "-- fault timelines --" in text
    assert "inject@100s -> detect@130s(+30s)" in text
    assert "MISSED" in text  # the undetected span is called out
    assert "-- false positives (1) --" in text
    assert "-- metrics --" in text
    assert "c4d_evaluations_total = 7" in text


def test_render_dashboard_round_trips_through_json():
    plane = traced_plane()
    direct = render_dashboard(plane.snapshot(meta={"title": "t"}))
    reloaded = render_dashboard(json.loads(json.dumps(plane.snapshot(meta={"title": "t"}))))
    assert direct == reloaded


def test_render_dashboard_survives_sorted_key_archives():
    # write_json re-serializes with sort_keys=True, which scrambles the
    # cumulative-bucket insertion order; rendering must re-order by
    # bound, never show a negative per-bucket count.
    plane = traced_plane()
    snapshot = plane.snapshot(meta={"title": "t"})
    sorted_keys = json.loads(json.dumps(snapshot, sort_keys=True))
    assert render_dashboard(sorted_keys) == render_dashboard(snapshot)
    assert "-1 " not in render_dashboard(sorted_keys)


def test_render_dashboard_handles_empty_snapshot():
    text = render_dashboard(build_snapshot(MetricsRegistry(), FaultTracer(MetricsRegistry())))
    assert "observability snapshot" in text
    assert "MTTD: no samples" in text
