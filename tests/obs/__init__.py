"""Tests for the observability plane (metrics, tracing, reports)."""
