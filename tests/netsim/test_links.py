"""Tests for links and their counters."""

import pytest

from repro.netsim.links import Link, LinkState
from repro.netsim.units import GBPS


def test_link_starts_up():
    link = Link(link_id="a", capacity=GBPS)
    assert link.is_up
    assert link.state is LinkState.UP


def test_fail_and_restore():
    link = Link(link_id="a", capacity=GBPS)
    link.fail()
    assert not link.is_up
    link.restore()
    assert link.is_up


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Link(link_id="a", capacity=0.0)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        Link(link_id="a", capacity=-5.0)


def test_account_accumulates_both_counters():
    link = Link(link_id="a", capacity=GBPS)
    link.account(100.0)
    link.account(50.0)
    assert link.bits_carried == 150.0
    assert link.window_bits == 150.0


def test_reset_window_preserves_total():
    link = Link(link_id="a", capacity=GBPS)
    link.account(100.0)
    link.reset_window()
    link.account(25.0)
    assert link.bits_carried == 125.0
    assert link.window_bits == 25.0


def test_window_rate():
    link = Link(link_id="a", capacity=GBPS)
    link.account(1000.0)
    assert link.window_rate(2.0) == 500.0


def test_window_rate_rejects_nonpositive_window():
    link = Link(link_id="a", capacity=GBPS)
    with pytest.raises(ValueError):
        link.window_rate(0.0)
