"""Tests for the timer queue."""

import pytest

from repro.netsim.engine import EventQueue


def test_empty_queue_has_no_next_time():
    queue = EventQueue()
    assert queue.next_time() is None
    assert len(queue) == 0


def test_schedule_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.schedule(2.0, lambda: fired.append("b"))
    queue.schedule(1.0, lambda: fired.append("a"))
    queue.schedule(3.0, lambda: fired.append("c"))
    for callback in queue.pop_due(3.0):
        callback()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    queue = EventQueue()
    fired = []
    for name in "abcde":
        queue.schedule(1.0, lambda n=name: fired.append(n))
    for callback in queue.pop_due(1.0):
        callback()
    assert fired == list("abcde")


def test_pop_due_respects_now():
    queue = EventQueue()
    queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    assert len(queue.pop_due(1.5)) == 1
    assert queue.next_time() == 2.0


def test_cancelled_timer_does_not_fire():
    queue = EventQueue()
    fired = []
    handle = queue.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    assert handle.cancelled
    for callback in queue.pop_due(2.0):
        callback()
    assert fired == []


def test_cancel_is_idempotent():
    queue = EventQueue()
    handle = queue.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_cancelled_timer_skipped_in_next_time():
    queue = EventQueue()
    first = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    first.cancel()
    assert queue.next_time() == 2.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-1.0, lambda: None)


def test_len_ignores_cancelled():
    queue = EventQueue()
    h1 = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    h1.cancel()
    assert len(queue) == 1


def test_handle_reports_time():
    queue = EventQueue()
    handle = queue.schedule(5.5, lambda: None)
    assert handle.time == 5.5


def test_compaction_bounds_heap_depth_under_cancel_churn():
    queue = EventQueue()
    handles = [queue.schedule(float(i), lambda: None) for i in range(1000)]
    keep = handles[::100]  # every 100th survives
    for handle in handles:
        if handle not in keep:
            handle.cancel()
    assert queue.compactions > 0
    # The heap holds the survivors plus at most a minority of dead entries.
    assert queue.depth() < 2 * len(keep) + EventQueue._COMPACT_MIN_HEAP
    assert len(queue) == len(keep)


def test_compaction_preserves_firing_order():
    queue = EventQueue()
    fired = []
    doomed = []
    keep = []
    # Interleave survivors and victims on the same and different instants.
    for i in range(200):
        t = float(i % 10)
        if i % 3 == 0:
            keep.append((t, i, queue.schedule(t, lambda t=t, i=i: fired.append((t, i)))))
        else:
            doomed.append(queue.schedule(t, lambda: fired.append("DOOMED")))
    for handle in doomed:
        handle.cancel()
    assert queue.compactions > 0
    for callback in queue.pop_due(100.0):
        callback()
    # Survivors fire in (time, scheduling) order, exactly as without compaction.
    assert fired == sorted((t, i) for t, i, _ in keep)
    assert "DOOMED" not in fired


def test_small_heaps_are_never_compacted():
    queue = EventQueue()
    handles = [queue.schedule(1.0, lambda: None) for _ in range(10)]
    for handle in handles:
        handle.cancel()
    assert queue.compactions == 0
    assert len(queue) == 0


def test_cancel_after_compaction_is_safe():
    queue = EventQueue()
    handles = [queue.schedule(1.0, lambda: None) for _ in range(128)]
    for handle in handles[:-1]:
        handle.cancel()
    # The last handle's entry may have been evicted by a rebuild already;
    # cancelling it must stay idempotent and keep counts consistent.
    handles[-1].cancel()
    handles[-1].cancel()
    assert len(queue) == 0
    assert queue.pop_due(2.0) == []
