"""Tests for the timer queue."""

import pytest

from repro.netsim.engine import EventQueue


def test_empty_queue_has_no_next_time():
    queue = EventQueue()
    assert queue.next_time() is None
    assert len(queue) == 0


def test_schedule_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.schedule(2.0, lambda: fired.append("b"))
    queue.schedule(1.0, lambda: fired.append("a"))
    queue.schedule(3.0, lambda: fired.append("c"))
    for callback in queue.pop_due(3.0):
        callback()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    queue = EventQueue()
    fired = []
    for name in "abcde":
        queue.schedule(1.0, lambda n=name: fired.append(n))
    for callback in queue.pop_due(1.0):
        callback()
    assert fired == list("abcde")


def test_pop_due_respects_now():
    queue = EventQueue()
    queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    assert len(queue.pop_due(1.5)) == 1
    assert queue.next_time() == 2.0


def test_cancelled_timer_does_not_fire():
    queue = EventQueue()
    fired = []
    handle = queue.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    assert handle.cancelled
    for callback in queue.pop_due(2.0):
        callback()
    assert fired == []


def test_cancel_is_idempotent():
    queue = EventQueue()
    handle = queue.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_cancelled_timer_skipped_in_next_time():
    queue = EventQueue()
    first = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    first.cancel()
    assert queue.next_time() == 2.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-1.0, lambda: None)


def test_len_ignores_cancelled():
    queue = EventQueue()
    h1 = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    h1.cancel()
    assert len(queue) == 1


def test_handle_reports_time():
    queue = EventQueue()
    handle = queue.schedule(5.5, lambda: None)
    assert handle.time == 5.5
