"""Tests for unit conversions."""

import pytest

from repro.netsim import units


def test_gbps_round_trip():
    assert units.bits_to_gbps(units.gbps_to_bits(123.4)) == pytest.approx(123.4)


def test_byte_bit_round_trip():
    assert units.bits_to_bytes(units.bytes_to_bits(77)) == pytest.approx(77)


def test_mib_is_1024_kib():
    assert units.MIB == 1024 * units.KIB


def test_gib_is_1024_mib():
    assert units.GIB == 1024 * units.MIB


def test_kib_is_8192_bits():
    assert units.KIB == 8192
