"""Tests for deterministic ECMP hashing."""

import pytest

from repro.netsim.routing import EcmpHasher, FiveTuple


TUPLE = FiveTuple(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=50000, dst_port=4791)


def test_choice_is_deterministic():
    hasher = EcmpHasher(seed=1)
    assert hasher.choose(TUPLE, 8) == hasher.choose(TUPLE, 8)


def test_seed_changes_choices():
    choices = {EcmpHasher(seed=s).choose(TUPLE, 1 << 16) for s in range(20)}
    assert len(choices) > 1


def test_stage_decorrelates():
    hasher = EcmpHasher(seed=1)
    values = {hasher.choose(TUPLE, 1 << 16, stage=f"s{i}") for i in range(20)}
    assert len(values) > 1


def test_choice_in_range():
    hasher = EcmpHasher(seed=3)
    for port in range(49152, 49252):
        ft = FiveTuple(src_ip="a", dst_ip="b", src_port=port, dst_port=4791)
        assert 0 <= hasher.choose(ft, 7) < 7


def test_zero_choices_rejected():
    with pytest.raises(ValueError):
        EcmpHasher().choose(TUPLE, 0)


def test_distribution_roughly_uniform():
    hasher = EcmpHasher(seed=5)
    counts = [0] * 8
    for port in range(49152, 49152 + 4096):
        ft = FiveTuple(src_ip="10.1.2.3", dst_ip="10.4.5.6", src_port=port, dst_port=4791)
        counts[hasher.choose(ft, 8)] += 1
    expected = 4096 / 8
    for count in counts:
        assert abs(count - expected) < expected * 0.25


def test_find_port_for_choice():
    hasher = EcmpHasher(seed=2)
    base = FiveTuple(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=0, dst_port=4791)
    for wanted in range(8):
        port = hasher.find_port_for_choice(base, 8, wanted, stage="up")
        ft = FiveTuple(src_ip=base.src_ip, dst_ip=base.dst_ip, src_port=port, dst_port=4791)
        assert hasher.choose(ft, 8, stage="up") == wanted


def test_find_port_invalid_wanted():
    hasher = EcmpHasher()
    base = FiveTuple(src_ip="a", dst_ip="b", src_port=0, dst_port=4791)
    with pytest.raises(ValueError):
        hasher.find_port_for_choice(base, 4, 4)


def test_find_port_exhaustion_raises():
    hasher = EcmpHasher(seed=0)
    base = FiveTuple(src_ip="a", dst_ip="b", src_port=0, dst_port=4791)
    # A port range of width 1 almost surely misses a 1-in-2^16 target.
    with pytest.raises(LookupError):
        hasher.find_port_for_choice(base, 1 << 16, 12345, port_range=range(50000, 50001))
