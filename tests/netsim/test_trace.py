"""Tests for the simulation tracer."""

import json

import pytest

from repro.netsim.flows import Flow
from repro.netsim.network import FlowNetwork
from repro.netsim.trace import SimTracer, TraceEventType
from repro.netsim.units import GBPS


def traced_net():
    net = FlowNetwork()
    net.tracer = SimTracer()
    net.add_link("a", GBPS)
    net.add_link("b", GBPS)
    return net


def test_flow_lifecycle_traced():
    net = traced_net()
    net.add_flow(Flow(flow_id="f", path=["a"], size=GBPS))
    net.run()
    tracer = net.tracer
    starts = tracer.of_type(TraceEventType.FLOW_START)
    completes = tracer.of_type(TraceEventType.FLOW_COMPLETE)
    assert len(starts) == 1 and starts[0].subject == "f"
    assert len(completes) == 1
    assert completes[0].detail["duration"] == pytest.approx(1.0)


def test_link_failure_and_stall_traced():
    net = traced_net()
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    net.add_flow(flow)
    net.schedule(1.0, lambda: net.fail_link("a"))
    net.schedule(2.0, lambda: net.restore_link("a"))
    net.run(until=3.0)
    tracer = net.tracer
    assert len(tracer.of_type(TraceEventType.LINK_DOWN)) == 1
    assert len(tracer.of_type(TraceEventType.LINK_UP)) == 1
    stalls = tracer.of_type(TraceEventType.FLOW_STALLED)
    assert len(stalls) == 1
    assert stalls[0].detail["link"] == "a"


def test_between_filters_by_time():
    net = traced_net()
    net.add_flow(Flow(flow_id="f1", path=["a"], size=GBPS))
    net.run()
    net.add_flow(Flow(flow_id="f2", path=["a"], size=GBPS))
    net.run()
    early = net.tracer.between(0.0, 1.5)
    subjects = {e.subject for e in early}
    assert "f1" in subjects
    assert "f2" not in subjects or all(
        e.event_type is TraceEventType.FLOW_START for e in early if e.subject == "f2"
    )


def test_summary_counts():
    net = traced_net()
    net.add_flow(Flow(flow_id="f", path=["a"], size=GBPS))
    net.run()
    summary = net.tracer.summary()
    assert summary["flow_start"] == 1
    assert summary["flow_complete"] == 1


def test_capacity_drops_oldest():
    tracer = SimTracer(capacity=2)
    net = FlowNetwork()
    net.tracer = tracer
    net.add_link("a", GBPS)
    for i in range(3):
        net.add_flow(Flow(flow_id=f"f{i}", path=["a"], size=GBPS))
        net.run()
    assert len(tracer.events) == 2
    assert tracer.dropped == 4  # 6 events total (3 starts + 3 completes)


def test_capacity_validation():
    with pytest.raises(ValueError):
        SimTracer(capacity=0)


def test_write_json(tmp_path):
    net = traced_net()
    net.add_flow(Flow(flow_id="f", path=["a"], size=GBPS))
    net.run()
    path = net.tracer.write_json(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert payload[0]["type"] == "flow_start"
    assert payload[-1]["type"] == "flow_complete"
