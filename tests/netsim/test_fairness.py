"""Tests for the weighted max-min fair solver."""

import pytest

from repro.netsim.fairness import max_min_rates
from repro.netsim.flows import Flow


def _flow(fid, path, weight=1.0, rate_cap=None):
    return Flow(flow_id=fid, path=path, size=1.0, weight=weight, rate_cap=rate_cap)


def test_empty_input():
    assert max_min_rates([], {}) == {}


def test_single_flow_gets_full_capacity():
    rates = max_min_rates([_flow("f", ["a"])], {"a": 10.0})
    assert rates["f"] == pytest.approx(10.0)


def test_equal_split_on_shared_link():
    flows = [_flow("f1", ["a"]), _flow("f2", ["a"])]
    rates = max_min_rates(flows, {"a": 10.0})
    assert rates["f1"] == pytest.approx(5.0)
    assert rates["f2"] == pytest.approx(5.0)


def test_weighted_split():
    flows = [_flow("f1", ["a"], weight=1.0), _flow("f2", ["a"], weight=3.0)]
    rates = max_min_rates(flows, {"a": 8.0})
    assert rates["f1"] == pytest.approx(2.0)
    assert rates["f2"] == pytest.approx(6.0)


def test_bottleneck_frees_capacity_elsewhere():
    # f2 is constrained on b, so f1 gets the leftover of a.
    flows = [_flow("f1", ["a"]), _flow("f2", ["a", "b"])]
    rates = max_min_rates(flows, {"a": 10.0, "b": 2.0})
    assert rates["f2"] == pytest.approx(2.0)
    assert rates["f1"] == pytest.approx(8.0)


def test_classic_three_flow_scenario():
    # Textbook: f1 on a, f2 on a+b, f3 on b; a=10, b=4.
    flows = [_flow("f1", ["a"]), _flow("f2", ["a", "b"]), _flow("f3", ["b"])]
    rates = max_min_rates(flows, {"a": 10.0, "b": 4.0})
    assert rates["f2"] == pytest.approx(2.0)
    assert rates["f3"] == pytest.approx(2.0)
    assert rates["f1"] == pytest.approx(8.0)


def test_rate_cap_limits_flow():
    flows = [_flow("f1", ["a"], rate_cap=1.0), _flow("f2", ["a"])]
    rates = max_min_rates(flows, {"a": 10.0})
    assert rates["f1"] == pytest.approx(1.0)
    assert rates["f2"] == pytest.approx(9.0)


def test_cap_override_takes_precedence():
    flows = [_flow("f1", ["a"], rate_cap=5.0)]
    rates = max_min_rates(flows, {"a": 10.0}, cap_overrides={"f1": 2.0})
    assert rates["f1"] == pytest.approx(2.0)


def test_cap_override_without_flow_cap():
    flows = [_flow("f1", ["a"])]
    rates = max_min_rates(flows, {"a": 10.0}, cap_overrides={"f1": 3.0})
    assert rates["f1"] == pytest.approx(3.0)


def test_no_link_oversubscribed():
    flows = [
        _flow("f1", ["a", "b"]),
        _flow("f2", ["b", "c"]),
        _flow("f3", ["a", "c"]),
        _flow("f4", ["a"]),
    ]
    caps = {"a": 7.0, "b": 3.0, "c": 5.0}
    rates = max_min_rates(flows, caps)
    load = {link: 0.0 for link in caps}
    for flow in flows:
        for link in flow.path:
            load[link] += rates[flow.flow_id]
    for link, total in load.items():
        assert total <= caps[link] * (1 + 1e-9)


def test_max_min_property_increasing_any_rate_needs_decrease():
    # At the max-min fixed point every flow crosses a saturated link.
    flows = [_flow("f1", ["a", "b"]), _flow("f2", ["b"]), _flow("f3", ["a"])]
    caps = {"a": 6.0, "b": 4.0}
    rates = max_min_rates(flows, caps)
    load = {link: 0.0 for link in caps}
    for flow in flows:
        for link in flow.path:
            load[link] += rates[flow.flow_id]
    for flow in flows:
        saturated = any(load[link] >= caps[link] * (1 - 1e-9) for link in flow.path)
        assert saturated, f"{flow.flow_id} could be increased"


def test_many_flows_one_link():
    flows = [_flow(f"f{i}", ["a"]) for i in range(100)]
    rates = max_min_rates(flows, {"a": 100.0})
    for rate in rates.values():
        assert rate == pytest.approx(1.0)


def test_disjoint_links_independent():
    flows = [_flow("f1", ["a"]), _flow("f2", ["b"])]
    rates = max_min_rates(flows, {"a": 3.0, "b": 7.0})
    assert rates["f1"] == pytest.approx(3.0)
    assert rates["f2"] == pytest.approx(7.0)
