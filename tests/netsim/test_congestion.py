"""Tests for the fluid DCQCN congestion model."""

import pytest

from repro.netsim.congestion import CongestionConfig, CongestionModel
from repro.netsim.flows import Flow
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GBPS


def _flow(fid, path, size=GBPS, cnp_key=None):
    flow = Flow(flow_id=fid, path=path, size=size)
    if cnp_key is not None:
        flow.metadata["cnp_key"] = cnp_key
    return flow


def test_no_cnps_on_uncongested_link():
    model = CongestionModel()
    flows = [_flow("f", ["a"])]
    model.observe(flows, {"f": 0.5 * GBPS}, {"a": GBPS}, dt=1.0)
    assert model.cnp_counts == {}


def test_cnps_generated_at_saturation():
    model = CongestionModel()
    flows = [_flow("f1", ["a"], cnp_key="p1"), _flow("f2", ["a"], cnp_key="p2")]
    rates = {"f1": 0.5 * GBPS, "f2": 0.5 * GBPS}
    model.observe(flows, rates, {"a": GBPS}, dt=1.0)
    assert model.cnp_counts["p1"] > 0
    assert model.cnp_counts["p2"] > 0


def test_cnp_rate_proportional_to_marked_bits():
    model = CongestionModel()
    flows = [_flow("f", ["a"], cnp_key="port")]
    model.observe(flows, {"f": 350 * GBPS}, {"a": 350 * GBPS}, dt=2.0)
    expected = 350 * GBPS * 2.0 * model.config.cnp_per_bit
    assert model.cnp_counts["port"] == pytest.approx(expected)


def test_cnp_marked_once_across_hops():
    # ECN sets the CE bit at the first congested queue; more congested
    # hops do not multiply CNPs.
    one_hop = CongestionModel()
    one_hop.observe([_flow("f", ["a"], cnp_key="p")], {"f": GBPS}, {"a": GBPS}, dt=1.0)
    two_hops = CongestionModel()
    two_hops.observe(
        [_flow("f", ["a", "b"], cnp_key="p")], {"f": GBPS}, {"a": GBPS, "b": GBPS}, dt=1.0
    )
    assert one_hop.cnp_counts["p"] == pytest.approx(two_hops.cnp_counts["p"])


def test_link_filter_excludes_links():
    model = CongestionModel(link_filter=lambda link_id: link_id != "nvl")
    flows = [_flow("f", ["nvl"], cnp_key="p")]
    model.observe(flows, {"f": GBPS}, {"nvl": GBPS}, dt=1.0)
    assert model.cnp_counts == {}
    model.tick(flows, {"f": GBPS}, {"nvl": GBPS})
    assert model.throttle_of(flows[0]) == 1.0


def test_throttle_decreases_under_congestion():
    model = CongestionModel(seed=1)
    flows = [_flow("f1", ["a"]), _flow("f2", ["a"])]
    rates = {"f1": 0.5 * GBPS, "f2": 0.5 * GBPS}
    for _ in range(5):
        model.tick(flows, rates, {"a": GBPS})
    assert model.throttle_of(flows[0]) < 1.0


def test_throttle_recovers_when_uncongested():
    model = CongestionModel(seed=1)
    flows = [_flow("f1", ["a"]), _flow("f2", ["a"])]
    rates = {"f1": 0.5 * GBPS, "f2": 0.5 * GBPS}
    for _ in range(10):
        model.tick(flows, rates, {"a": GBPS})
    throttled = model.throttle_of(flows[0])
    for _ in range(30):
        model.tick(flows, {"f1": 0.1 * GBPS, "f2": 0.1 * GBPS}, {"a": GBPS})
    assert model.throttle_of(flows[0]) > throttled


def test_throttle_floor_respected():
    config = CongestionConfig(throttle_floor=0.7)
    model = CongestionModel(config=config, seed=0)
    flows = [_flow("f1", ["a"]), _flow("f2", ["a"])]
    rates = {"f1": 0.5 * GBPS, "f2": 0.5 * GBPS}
    for _ in range(200):
        model.tick(flows, rates, {"a": GBPS})
    assert model.throttle_of(flows[0]) >= 0.7


def test_forget_drops_state():
    model = CongestionModel(seed=1)
    flow = _flow("f", ["a"])
    model.tick([flow, _flow("g", ["a"])], {"f": GBPS, "g": GBPS}, {"a": GBPS})
    model.forget(flow)
    assert model.throttle_of(flow) == 1.0


def test_network_applies_throttle():
    # A single flow saturating its link gets throttled below line rate,
    # so the transfer takes longer than the ideal 10s.
    model = CongestionModel(seed=3)
    net = FlowNetwork(congestion=model)
    net.add_link("a", GBPS)
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    net.add_flow(flow)
    net.run()
    assert net.now > 10.0


def test_deterministic_given_seed():
    def run(seed):
        model = CongestionModel(seed=seed)
        net = FlowNetwork(congestion=model)
        net.add_link("a", GBPS)
        net.add_flow(Flow(flow_id="f1", path=["a"], size=3 * GBPS))
        net.run()
        return net.now

    assert run(7) == run(7)
    assert run(7) != run(8)
