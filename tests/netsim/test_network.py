"""Tests for the flow network event loop."""

import pytest

from repro.netsim.flows import Flow, FlowState
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GBPS


def build_net(*links):
    net = FlowNetwork()
    for link_id, cap in links:
        net.add_link(link_id, cap)
    return net


def test_duplicate_link_rejected():
    net = build_net(("a", GBPS))
    with pytest.raises(ValueError):
        net.add_link("a", GBPS)


def test_flow_on_unknown_link_rejected():
    net = build_net(("a", GBPS))
    with pytest.raises(KeyError):
        net.add_flow(Flow(flow_id="f", path=["missing"], size=1.0))


def test_duplicate_flow_rejected():
    net = build_net(("a", GBPS))
    net.add_flow(Flow(flow_id="f", path=["a"], size=1.0))
    with pytest.raises(ValueError):
        net.add_flow(Flow(flow_id="f", path=["a"], size=1.0))


def test_single_flow_completion_time():
    net = build_net(("a", 10 * GBPS))
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    net.add_flow(flow)
    net.run()
    assert flow.state is FlowState.COMPLETED
    assert flow.end_time == pytest.approx(1.0)
    assert flow.mean_rate == pytest.approx(10 * GBPS)


def test_two_flows_share_then_speed_up():
    # Equal flows on one link: both finish at 2x the solo time.
    net = build_net(("a", 10 * GBPS))
    f1 = Flow(flow_id="f1", path=["a"], size=10 * GBPS)
    f2 = Flow(flow_id="f2", path=["a"], size=10 * GBPS)
    net.add_flow(f1)
    net.add_flow(f2)
    net.run()
    assert f1.end_time == pytest.approx(2.0)
    assert f2.end_time == pytest.approx(2.0)


def test_late_flow_rate_dynamics():
    # f1 runs alone for 1s, then shares for the rest.
    net = build_net(("a", 10 * GBPS))
    f1 = Flow(flow_id="f1", path=["a"], size=15 * GBPS)
    net.add_flow(f1)
    net.schedule(1.0, lambda: net.add_flow(Flow(flow_id="f2", path=["a"], size=5 * GBPS)))
    net.run()
    # After 1s f1 has 5e9 left; shares 5+5 for 1s -> both done at t=2.
    assert f1.end_time == pytest.approx(2.0)


def test_on_complete_callback_chains():
    net = build_net(("a", GBPS))
    order = []

    def chain(flow):
        order.append(flow.flow_id)
        if len(order) < 3:
            net.add_flow(
                Flow(flow_id=f"f{len(order)}", path=["a"], size=GBPS, on_complete=chain)
            )

    net.add_flow(Flow(flow_id="f0", path=["a"], size=GBPS, on_complete=chain))
    net.run()
    assert order == ["f0", "f1", "f2"]
    assert net.now == pytest.approx(3.0)


def test_fail_link_stalls_flow():
    net = build_net(("a", GBPS))
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    net.add_flow(flow)
    net.schedule(1.0, lambda: net.fail_link("a"))
    net.run(until=5.0)
    assert flow.state is FlowState.STALLED
    assert flow.remaining == pytest.approx(9 * GBPS)
    assert net.stalled_flows() == [flow]


def test_reroute_handler_invoked():
    net = build_net(("a", GBPS), ("b", GBPS))
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    seen = []

    def handler(link, flows):
        seen.append((link.link_id, list(flows)))
        for affected in flows:
            affected.reroute(["b"])

    net.reroute_handler = handler
    net.add_flow(flow)
    net.schedule(1.0, lambda: net.fail_link("a"))
    net.run()
    assert seen and seen[0][0] == "a"
    assert flow.state is FlowState.COMPLETED
    assert flow.end_time == pytest.approx(10.0)


def test_flow_added_on_failed_link_is_stalled():
    net = build_net(("a", GBPS))
    net.fail_link("a")
    flow = net.add_flow(Flow(flow_id="f", path=["a"], size=1.0))
    assert flow.state is FlowState.STALLED


def test_restore_link_resumes_after_reroute_to_self():
    net = build_net(("a", GBPS))
    flow = Flow(flow_id="f", path=["a"], size=10 * GBPS)
    net.add_flow(flow)
    net.schedule(1.0, lambda: net.fail_link("a"))

    def back_up():
        net.restore_link("a")
        flow.reroute(["a"])

    net.schedule(3.0, back_up)
    net.run()
    # 1s of transfer + 2s stalled + 9s remaining.
    assert flow.end_time == pytest.approx(12.0)


def test_run_until_advances_clock_exactly():
    net = build_net(("a", GBPS))
    net.run(until=7.5)
    assert net.now == 7.5


def test_link_byte_accounting():
    net = build_net(("a", 10 * GBPS), ("b", 10 * GBPS))
    net.add_flow(Flow(flow_id="f", path=["a", "b"], size=20 * GBPS))
    net.run()
    assert net.link("a").bits_carried == pytest.approx(20 * GBPS)
    assert net.link("b").bits_carried == pytest.approx(20 * GBPS)


def test_window_rates():
    net = build_net(("a", 10 * GBPS))
    net.add_flow(Flow(flow_id="f", path=["a"], size=10 * GBPS))
    net.reset_link_windows()
    net.run(until=0.5)
    rates = net.link_window_rates(0.5)
    assert rates["a"] == pytest.approx(10 * GBPS)


def test_weights_respected_in_network():
    net = build_net(("a", 9 * GBPS))
    f1 = Flow(flow_id="f1", path=["a"], size=3 * GBPS, weight=1.0)
    f2 = Flow(flow_id="f2", path=["a"], size=6 * GBPS, weight=2.0)
    net.add_flow(f1)
    net.add_flow(f2)
    net.run()
    # Rates 3 and 6 Gbps; both complete at t=1.
    assert f1.end_time == pytest.approx(1.0)
    assert f2.end_time == pytest.approx(1.0)


def test_sanity_check_passes_on_healthy_network():
    net = build_net(("a", GBPS), ("b", GBPS))
    net.add_flow(Flow(flow_id="f", path=["a", "b"], size=GBPS))
    net.sanity_check()


def test_timers_and_flows_interleave():
    net = build_net(("a", GBPS))
    events = []
    net.add_flow(Flow(flow_id="f", path=["a"], size=2 * GBPS, on_complete=lambda f: events.append("flow")))
    net.schedule(1.0, lambda: events.append("timer1"))
    net.schedule(3.0, lambda: events.append("timer3"))
    net.run()
    assert events == ["timer1", "flow", "timer3"]


def test_new_flow_id_unique():
    net = build_net(("a", GBPS))
    ids = {net.new_flow_id() for _ in range(100)}
    assert len(ids) == 100


def test_schedule_in_past_rejected():
    net = build_net(("a", GBPS))
    net.schedule(1.0, lambda: None)
    net.run(until=2.0)
    with pytest.raises(ValueError):
        net.schedule_at(1.0, lambda: None)


def test_negative_delay_rejected():
    net = build_net(("a", GBPS))
    with pytest.raises(ValueError):
        net.schedule(-0.5, lambda: None)


def test_weight_change_mid_flight_shifts_rates():
    net = build_net(("a", 10 * GBPS))
    f1 = Flow(flow_id="f1", path=["a"], size=100 * GBPS)
    f2 = Flow(flow_id="f2", path=["a"], size=100 * GBPS)
    net.add_flow(f1)
    net.add_flow(f2)

    def boost():
        f1.weight = 3.0

    net.schedule(1.0, boost)
    net.run(until=2.0)
    rates = net.compute_rates()
    assert rates["f1"] == pytest.approx(7.5 * GBPS)
    assert rates["f2"] == pytest.approx(2.5 * GBPS)


def test_remaining_transfer_moves_between_flows():
    # Moving bits between flows (the LB primitive) conserves totals.
    net = build_net(("a", GBPS), ("b", GBPS))
    f1 = Flow(flow_id="f1", path=["a"], size=10 * GBPS)
    f2 = Flow(flow_id="f2", path=["b"], size=10 * GBPS)
    net.add_flow(f1)
    net.add_flow(f2)
    net.run(until=1.0)
    moved = f1.remaining / 2
    f1.remaining -= moved
    f2.remaining += moved
    net.run()
    assert f1.state is FlowState.COMPLETED
    assert f2.state is FlowState.COMPLETED
    assert f2.end_time > f1.end_time


def test_run_rejects_reentrant_calls():
    network = FlowNetwork()
    errors = []

    def reenter():
        try:
            network.run(until=5.0)
        except RuntimeError as exc:
            errors.append(str(exc))

    network.schedule(1.0, reenter)
    network.run(until=2.0)
    assert len(errors) == 1
    assert "re-entered" in errors[0]
    # The guard resets: a fresh top-level run() works afterwards.
    network.schedule(1.0, lambda: None)
    network.run(until=5.0)
