"""Tests for flow lifecycle objects."""

import math

import pytest

from repro.netsim.flows import Flow, FlowState


def test_flow_initial_state():
    flow = Flow(flow_id="f", path=["a"], size=100.0)
    assert flow.state is FlowState.ACTIVE
    assert flow.remaining == 100.0
    assert math.isnan(flow.start_time)
    assert math.isnan(flow.end_time)


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Flow(flow_id="f", path=["a"], size=0.0)


def test_invalid_weight_rejected():
    with pytest.raises(ValueError):
        Flow(flow_id="f", path=["a"], size=1.0, weight=0.0)


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        Flow(flow_id="f", path=[], size=1.0)


def test_invalid_rate_cap_rejected():
    with pytest.raises(ValueError):
        Flow(flow_id="f", path=["a"], size=1.0, rate_cap=-1.0)


def test_reroute_replaces_path():
    flow = Flow(flow_id="f", path=["a", "b"], size=1.0)
    flow.reroute(["c"])
    assert list(flow.path) == ["c"]


def test_reroute_unstalls():
    flow = Flow(flow_id="f", path=["a"], size=1.0)
    flow.state = FlowState.STALLED
    flow.reroute(["b"])
    assert flow.state is FlowState.ACTIVE


def test_reroute_empty_path_rejected():
    flow = Flow(flow_id="f", path=["a"], size=1.0)
    with pytest.raises(ValueError):
        flow.reroute([])


def test_duration_and_mean_rate():
    flow = Flow(flow_id="f", path=["a"], size=100.0)
    flow.start_time = 1.0
    flow.end_time = 3.0
    assert flow.duration == 2.0
    assert flow.mean_rate == 50.0


def test_metadata_defaults_to_dict():
    flow = Flow(flow_id="f", path=["a"], size=1.0)
    flow.metadata["k"] = "v"
    assert flow.metadata["k"] == "v"
