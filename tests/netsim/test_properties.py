"""Property-based tests (hypothesis) for the netsim invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.netsim.fairness import max_min_rates
from repro.netsim.flows import Flow
from repro.netsim.network import FlowNetwork

LINKS = ["a", "b", "c", "d", "e"]


@st.composite
def fairness_instance(draw):
    num_links = draw(st.integers(min_value=1, max_value=5))
    links = LINKS[:num_links]
    caps = {
        link: draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
        for link in links
    }
    num_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for i in range(num_flows):
        path = draw(
            st.lists(st.sampled_from(links), min_size=1, max_size=num_links, unique=True)
        )
        weight = draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)))
        flows.append(Flow(flow_id=f"f{i}", path=path, size=1.0, weight=weight, rate_cap=cap))
    return flows, caps


@given(fairness_instance())
@settings(max_examples=200, deadline=None)
def test_rates_never_oversubscribe_links(instance):
    flows, caps = instance
    rates = max_min_rates(flows, caps)
    load = {link: 0.0 for link in caps}
    for flow in flows:
        assert rates[flow.flow_id] >= 0.0
        for link in flow.path:
            load[link] += rates[flow.flow_id]
    for link, total in load.items():
        assert total <= caps[link] * (1 + 1e-6) + 1e-9


@given(fairness_instance())
@settings(max_examples=200, deadline=None)
def test_rates_respect_caps(instance):
    flows, caps = instance
    rates = max_min_rates(flows, caps)
    for flow in flows:
        if flow.rate_cap is not None:
            assert rates[flow.flow_id] <= flow.rate_cap * (1 + 1e-6)


@given(fairness_instance())
@settings(max_examples=200, deadline=None)
def test_every_flow_is_bottlenecked_somewhere(instance):
    # Max-min optimality: each flow crosses a saturated link or runs at
    # its own cap — otherwise its rate could be raised.
    flows, caps = instance
    rates = max_min_rates(flows, caps)
    load = {link: 0.0 for link in caps}
    for flow in flows:
        for link in flow.path:
            load[link] += rates[flow.flow_id]
    for flow in flows:
        rate = rates[flow.flow_id]
        at_cap = flow.rate_cap is not None and rate >= flow.rate_cap * (1 - 1e-6)
        saturated = any(load[link] >= caps[link] * (1 - 1e-6) for link in flow.path)
        assert at_cap or saturated


@given(
    st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=8),
    st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=100, deadline=None)
def test_network_conserves_bytes(sizes, capacity):
    net = FlowNetwork()
    net.add_link("l", capacity)
    flows = [
        Flow(flow_id=f"f{i}", path=["l"], size=size) for i, size in enumerate(sizes)
    ]
    for flow in flows:
        net.add_flow(flow)
    net.run()
    total = sum(sizes)
    assert net.link("l").bits_carried <= total * (1 + 1e-6)
    assert net.link("l").bits_carried >= total * (1 - 1e-6)
    for flow in flows:
        assert flow.remaining == 0.0
        assert not math.isnan(flow.end_time)


@given(
    st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=2, max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_completion_order_matches_size_order_on_shared_link(sizes):
    # Equal-weight flows on one link finish in size order.
    net = FlowNetwork()
    net.add_link("l", 10.0)
    flows = [
        Flow(flow_id=f"f{i}", path=["l"], size=size) for i, size in enumerate(sizes)
    ]
    for flow in flows:
        net.add_flow(flow)
    net.run()
    by_size = sorted(flows, key=lambda f: f.size)
    ends = [f.end_time for f in by_size]
    assert ends == sorted(ends)
