"""Tests for the fault taxonomy and injector."""

import pytest

from repro.cluster.faults import (
    PAPER_CRASH_MIX,
    USER_VIEW,
    FaultClass,
    FaultEvent,
    FaultInjector,
    FaultRates,
    FaultType,
)
from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GBPS

MONTH = 30 * 24 * 3600.0


def test_paper_mix_proportions_sum_to_one():
    assert sum(p for p, _local in PAPER_CRASH_MIX.values()) == pytest.approx(1.0)


def test_user_view_mostly_nccl_errors():
    # Table I: everything except "others" surfaces as NCCL Error.
    nccl = [t for t, v in USER_VIEW.items() if v == "NCCL Error"]
    assert len(nccl) == 4


def test_crash_rate_matches_table1():
    # ~40 crashes/month at 4096 GPUs.
    injector = FaultInjector(seed=0)
    events = injector.sample_crashes(MONTH, 4096, 512)
    assert 25 <= len(events) <= 55


def test_crash_rate_scales_with_gpus():
    injector = FaultInjector(seed=0)
    small = injector.sample_crashes(MONTH, 512, 64)
    injector2 = FaultInjector(seed=0)
    large = injector2.sample_crashes(MONTH, 8192, 1024)
    assert len(large) > len(small)


def test_events_sorted_by_time():
    events = FaultInjector(seed=1).sample_crashes(MONTH, 4096, 512)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_locality_fraction_near_paper():
    # Table I: ~82.5% of faults are local.
    events = FaultInjector(seed=2).sample_crashes(MONTH * 20, 4096, 512)
    local = sum(1 for e in events if e.is_local)
    assert 0.75 < local / len(events) < 0.90


def test_local_faults_have_component():
    events = FaultInjector(seed=3).sample_crashes(MONTH * 5, 4096, 512)
    for event in events:
        if event.is_local:
            assert event.component is not None and 0 <= event.component < 512
        else:
            assert event.component is None


def test_gpu_faults_carry_device():
    events = FaultInjector(seed=4).sample_crashes(MONTH * 5, 4096, 512)
    for event in events:
        if event.is_local and event.fault_type in (
            FaultType.CUDA_ERROR,
            FaultType.ECC_NVLINK_ERROR,
        ):
            assert event.device is not None and 0 <= event.device < 8


def test_all_crash_events_are_crash_class():
    events = FaultInjector(seed=5).sample_crashes(MONTH, 4096, 512)
    assert all(e.fault_class is FaultClass.CRASH for e in events)


def test_scaled_rates():
    rates = FaultRates().scaled(0.3)
    assert rates.crashes_per_gpu_second == pytest.approx(
        FaultRates().crashes_per_gpu_second * 0.3
    )


def test_invalid_sample_args():
    injector = FaultInjector()
    with pytest.raises(ValueError):
        injector.sample_crashes(-1.0, 8, 1)
    with pytest.raises(ValueError):
        injector.sample_crashes(10.0, 0, 1)


@pytest.fixture
def topo():
    return ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=0)


def test_degrade_gpu(topo):
    event = FaultInjector(seed=0).degrade_gpu(topo, node=2, gpu=5, scale=0.4)
    assert topo.node(2).gpus[5].compute_scale == 0.4
    assert event.fault_type is FaultType.SLOW_GPU
    assert event.component == 2 and event.device == 5


def test_degrade_gpu_validates_scale(topo):
    with pytest.raises(ValueError):
        FaultInjector().degrade_gpu(topo, 0, 0, 0.0)


def test_degrade_nic_port(topo):
    FaultInjector(seed=0).degrade_nic_port(topo, node=1, nic=3, side=1, scale=0.25)
    assert topo.network.link(topo.host_up(1, 3, 1)).capacity == pytest.approx(50 * GBPS)


def test_degrade_host(topo):
    FaultInjector(seed=0).degrade_host(topo, node=7, slowdown=3.0)
    assert topo.node(7).host_slowdown == 3.0


def test_degrade_host_validates(topo):
    with pytest.raises(ValueError):
        FaultInjector().degrade_host(topo, 0, 0.5)


def test_fail_uplink(topo):
    event = FaultInjector(seed=0).fail_uplink(topo, rail=0, side=0, spine=2, port=1)
    assert not topo.network.link(topo.leaf_up(0, 0, 2, 1)).is_up
    assert event.fault_type is FaultType.LINK_FAILURE


def test_pick_victims_distinct():
    injector = FaultInjector(seed=0)
    victims = injector.pick_victims(list(range(10)), 5)
    assert len(set(victims)) == 5


def test_pick_victims_too_many():
    with pytest.raises(ValueError):
        FaultInjector().pick_victims([1, 2], 3)


# ----------------------------------------------------------------------
# Adversarial fault models (chaos harness)
# ----------------------------------------------------------------------
def test_flapping_events_share_episode_and_alternate_windows():
    events = FaultInjector(seed=5).sample_flapping(
        duration_seconds=3600.0, num_nodes=8, episodes=2
    )
    assert events
    by_episode = {}
    for event in events:
        assert event.fault_type is FaultType.FLAPPING_HOST
        assert event.duration is not None and event.duration > 0
        by_episode.setdefault(event.episode_id, []).append(event)
    assert set(by_episode) == {0, 1}
    for episode_events in by_episode.values():
        # One victim node per episode; recurrences never overlap.
        assert len({e.component for e in episode_events}) == 1
        ordered = sorted(episode_events, key=lambda e: e.time)
        for earlier, later in zip(ordered, ordered[1:], strict=False):
            assert earlier.end_time <= later.time


def test_cascade_events_share_window_and_contiguous_nodes():
    events = FaultInjector(seed=3).sample_cascades(
        duration_seconds=3600.0, num_nodes=16, cascades=1, group_size=4
    )
    assert len(events) == 4
    nodes = sorted(e.component for e in events)
    assert nodes == list(range(nodes[0], nodes[0] + 4))  # one ToR's hosts
    assert len({(e.time, e.duration) for e in events}) == 1
    assert all(e.cascade_id == 0 for e in events)


def test_checkpoint_corruption_events_sampled():
    events = FaultInjector(seed=11).sample_checkpoint_corruptions(
        duration_seconds=3600.0, expected_events=5.0
    )
    assert all(e.fault_type is FaultType.CHECKPOINT_CORRUPTION for e in events)
    assert [e.time for e in events] == sorted(e.time for e in events)


def test_active_at_respects_windows():
    event = FaultInjector(seed=0).sample_flapping(
        duration_seconds=3600.0, num_nodes=4, episodes=1
    )[0]
    assert not event.active_at(event.time - 1.0)
    assert event.active_at(event.time)
    assert event.active_at(event.time + event.duration / 2)
    assert not event.active_at(event.time + event.duration)


def test_permanent_fault_active_forever():
    event = FaultEvent(10.0, FaultType.CUDA_ERROR, FaultClass.CRASH, True, 2)
    assert event.end_time is None
    assert event.active_at(10.0) and event.active_at(1e9)


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_adversarial_sampling_deterministic_under_seed(seed):
    # Property: every new fault kind is a pure function of the seed.
    def sample(injector):
        return (
            injector.sample_flapping(7200.0, num_nodes=16, episodes=3),
            injector.sample_cascades(7200.0, num_nodes=16, cascades=2),
            injector.sample_checkpoint_corruptions(7200.0, expected_events=2.0),
        )

    first = sample(FaultInjector(seed=seed))
    second = sample(FaultInjector(seed=seed))
    assert first == second
    # A different seed produces a different plan (overwhelmingly likely).
    other = sample(FaultInjector(seed=seed + 1))
    assert first != other
