"""Tests for cluster specifications."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES, ClusterSpec, pod_spec
from repro.netsim.units import GBPS


def test_testbed_matches_paper_table2():
    spec = TESTBED_16_NODES
    assert spec.num_nodes == 16
    assert spec.total_gpus == 128
    assert spec.gpus_per_node == 8
    assert spec.nics_per_node == 8
    assert spec.port_gbps == 200.0
    assert spec.oversubscription == 1.0
    # 8 leaf switches = 4 rail pairs.
    assert spec.rails * 2 == 8


def test_testbed_is_one_to_one():
    spec = TESTBED_16_NODES
    assert spec.leaf_uplink_ports == spec.leaf_downlink_ports


def test_bonded_capacity_is_400g():
    assert TESTBED_16_NODES.bonded_capacity == pytest.approx(400 * GBPS)


def test_nvlink_cap_matches_peak_busbw():
    # Per-channel ceiling should be the paper's 362 Gbps.
    spec = TESTBED_16_NODES
    per_channel = spec.nvlink_capacity / (2 * spec.nics_per_node)
    assert per_channel == pytest.approx(362 * GBPS)


def test_rails_must_divide_nics():
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=2, nics_per_node=8, rails=3)


def test_oversubscription_below_one_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=2, oversubscription=0.5)


def test_nonpositive_nodes_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=0)


def test_with_oversubscription_scales_uplinks():
    spec = TESTBED_16_NODES.with_oversubscription(2.0)
    assert spec.uplink_capacity == pytest.approx(TESTBED_16_NODES.uplink_capacity / 2)
    assert spec.num_nodes == TESTBED_16_NODES.num_nodes


def test_with_nodes_preserves_rest():
    spec = TESTBED_16_NODES.with_nodes(4)
    assert spec.num_nodes == 4
    assert spec.port_gbps == TESTBED_16_NODES.port_gbps


def test_pod_spec_is_one_to_one():
    for nodes in (2, 8, 32, 64):
        spec = pod_spec(nodes)
        assert spec.leaf_uplink_ports >= spec.leaf_downlink_ports


def test_pod_spec_caps_at_512_gpus():
    with pytest.raises(ValueError):
        pod_spec(65)


def test_nics_per_rail():
    assert TESTBED_16_NODES.nics_per_rail == 2
