"""Tests for hardware inventory objects."""

from repro.cluster.hardware import ComponentHealth, Nic, Node, PortSide


def test_node_build_counts():
    node = Node.build(3, gpus_per_node=8, nics_per_node=8)
    assert len(node.gpus) == 8
    assert len(node.nics) == 8
    assert node.name == "node3"


def test_nic_has_both_ports():
    nic = Nic(node_id=1, index=2)
    assert set(nic.ports) == {PortSide.LEFT, PortSide.RIGHT}
    assert nic.ports[PortSide.LEFT].side is PortSide.LEFT


def test_port_side_index():
    assert PortSide.LEFT.index == 0
    assert PortSide.RIGHT.index == 1


def test_identifiers():
    node = Node.build(5, 8, 8)
    assert node.gpus[2].gpu_id == "node5/gpu2"
    assert node.nics[3].nic_id == "node5/nic3"
    assert node.nics[3].ports[PortSide.RIGHT].port_id == "node5/nic3/R"


def test_nic_ip_is_deterministic_and_unique():
    ips = set()
    for node_id in range(4):
        for nic_index in range(8):
            ips.add(Nic(node_id=node_id, index=nic_index).ip_address)
    assert len(ips) == 32


def test_worst_gpu_scale():
    node = Node.build(0, 8, 8)
    node.gpus[4].compute_scale = 0.5
    assert node.worst_gpu_scale() == 0.5


def test_isolate_and_schedulable():
    node = Node.build(0, 8, 8)
    assert node.is_schedulable
    node.isolate()
    assert node.health is ComponentHealth.ISOLATED
    assert not node.is_schedulable


def test_degraded_still_schedulable():
    node = Node.build(0, 8, 8)
    node.health = ComponentHealth.DEGRADED
    assert node.is_schedulable


def test_restore_clears_all_degradations():
    node = Node.build(0, 8, 8)
    node.gpus[1].compute_scale = 0.3
    node.nics[2].ports[PortSide.LEFT].bandwidth_scale = 0.5
    node.host_slowdown = 2.0
    node.isolate()
    node.restore()
    assert node.health is ComponentHealth.HEALTHY
    assert node.worst_gpu_scale() == 1.0
    assert node.nics[2].ports[PortSide.LEFT].bandwidth_scale == 1.0
    assert node.host_slowdown == 1.0
