"""Tests for the Clos topology builder and routing."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology, PathChoice
from repro.netsim.network import FlowNetwork
from repro.netsim.routing import FiveTuple
from repro.netsim.units import GBPS


@pytest.fixture
def topo():
    return ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=1)


FT = FiveTuple(src_ip="10.0.0.0", dst_ip="10.0.0.5", src_port=50123, dst_port=4791)


def test_link_count(topo):
    spec = TESTBED_16_NODES
    host_links = spec.num_nodes * spec.nics_per_node * 2 * 2  # up+down per port
    nvlinks = spec.num_nodes
    fabric = spec.rails * 2 * spec.spines_per_rail * spec.uplink_ports_per_spine * 2
    assert len(topo.network.links) == host_links + nvlinks + fabric


def test_host_link_capacity(topo):
    link = topo.network.link(topo.host_up(0, 0, 0))
    assert link.capacity == pytest.approx(200 * GBPS)


def test_rail_of(topo):
    assert topo.rail_of(0) == 0
    assert topo.rail_of(5) == 1
    assert topo.rail_of(7) == 3


def test_resolve_path_structure(topo):
    choice = PathChoice(src_side=0, spine=3, up_port=1, dst_side=1, down_port=2)
    path = topo.resolve_path(0, 2, 5, 2, choice)
    assert path == [
        ("nvl", 0),
        ("hup", 0, 2, 0),
        ("lup", 2, 0, 3, 1),
        ("sdn", 2, 3, 1, 2),
        ("hdn", 5, 2, 1),
        ("nvl", 5),
    ]


def test_resolve_path_without_nvlink(topo):
    choice = PathChoice(0, 0, 0, 0, 0)
    path = topo.resolve_path(0, 0, 1, 0, choice, include_nvlink=False)
    assert ("nvl", 0) not in path
    assert len(path) == 4


def test_cross_rail_path_rejected(topo):
    choice = PathChoice(0, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        topo.resolve_path(0, 0, 1, 1, choice)


def test_ecmp_path_links_exist(topo):
    path = topo.ecmp_path(0, 0, 5, 0, FT)
    for link_id in path:
        assert link_id in topo.network.links


def test_ecmp_deterministic(topo):
    c1 = topo.ecmp_choice(0, 0, 5, 0, FT)
    c2 = topo.ecmp_choice(0, 0, 5, 0, FT)
    assert c1 == c2


def test_ecmp_pinned_src_side(topo):
    choice = topo.ecmp_choice(0, 0, 5, 0, FT, src_side=1)
    assert choice.src_side == 1


def test_ecmp_avoids_failed_uplink(topo):
    base = topo.ecmp_choice(0, 0, 5, 0, FT)
    topo.network.fail_link(topo.leaf_up(0, base.src_side, base.spine, base.up_port))
    rerouted = topo.ecmp_choice(0, 0, 5, 0, FT, src_side=base.src_side)
    assert (rerouted.spine, rerouted.up_port) != (base.spine, base.up_port)


def test_ecmp_raises_when_all_uplinks_dead(topo):
    spec = TESTBED_16_NODES
    for spine in range(spec.spines_per_rail):
        for k in range(spec.uplink_ports_per_spine):
            topo.network.fail_link(topo.leaf_up(0, 0, spine, k))
    with pytest.raises(RuntimeError):
        topo.ecmp_choice(0, 0, 5, 0, FT, src_side=0)


def test_set_port_scale_is_idempotent(topo):
    topo.set_port_scale(2, 3, 0, 0.5)
    topo.set_port_scale(2, 3, 0, 0.5)
    assert topo.network.link(topo.host_up(2, 3, 0)).capacity == pytest.approx(100 * GBPS)
    assert topo.network.link(topo.host_down(2, 3, 0)).capacity == pytest.approx(100 * GBPS)


def test_set_port_scale_rejects_nonpositive(topo):
    with pytest.raises(ValueError):
        topo.set_port_scale(0, 0, 0, 0.0)


def test_disable_spine(topo):
    topo.disable_spine(0, 3)
    assert 3 not in topo.enabled_spines(0)
    assert not topo.network.link(topo.leaf_up(0, 0, 3, 0)).is_up
    assert not topo.network.link(topo.spine_down(0, 3, 1, 0)).is_up


def test_candidate_choices_skip_disabled_spines(topo):
    topo.disable_spine(0, 0)
    spines = {c.spine for c in topo.candidate_choices(0)}
    assert 0 not in spines
    assert len(spines) == TESTBED_16_NODES.spines_per_rail - 1


def test_leaf_uplinks_enumeration(topo):
    spec = TESTBED_16_NODES
    uplinks = topo.leaf_uplinks(1, 0)
    assert len(uplinks) == spec.spines_per_rail * spec.uplink_ports_per_spine
    assert all(link[0] == "lup" and link[1] == 1 and link[2] == 0 for link in uplinks)


def test_schedulable_nodes_excludes_isolated(topo):
    topo.node(4).isolate()
    nodes = topo.schedulable_nodes()
    assert all(n.node_id != 4 for n in nodes)
    assert len(nodes) == 15


def test_intra_node_path(topo):
    assert topo.intra_node_path(7) == [("nvl", 7)]


def test_ecmp_spreads_across_spines(topo):
    spines = set()
    for port in range(50000, 50100):
        ft = FiveTuple(src_ip="10.0.0.0", dst_ip="10.0.0.9", src_port=port, dst_port=4791)
        spines.add(topo.ecmp_choice(0, 0, 9, 0, ft).spine)
    # 100 flows should reach most of the 8 spines.
    assert len(spines) >= 6
