"""Fig. 3: performance loss grows with system scale (16 → 512 GPUs).

GPT-22B weak-scaling sweep.  "Actual" is the ECMP baseline fabric with
its growing traffic collisions; "ideal" is the same job on a collision-
free (C4P-planned) fabric.  The paper's shape: near-ideal at 16 GPUs,
~30% below ideal at 512.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig3


def test_fig3_actual_vs_ideal_throughput(benchmark):
    result = run_once(benchmark, fig3.run)
    print()
    print(fig3.format_result(result))
    benchmark.extra_info["ratio_at_512"] = result.ratio_at_largest
    benchmark.extra_info["ratio_at_16"] = result.ratio_at_smallest

    # Shape: the loss grows with scale and reaches roughly the paper's
    # 30%-below-ideal at 512 GPUs.
    assert result.ratio_at_smallest > 0.90
    assert result.ratio_at_largest < 0.82
    assert result.ratio_at_largest < result.ratio_at_smallest
    # Ideal throughput scales ~linearly (weak scaling sanity).
    ideal_per_gpu = [p.ideal_samples_per_s / p.gpus for p in result.points]
    assert max(ideal_per_gpu) / min(ideal_per_gpu) < 1.2
