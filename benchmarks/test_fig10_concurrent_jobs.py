"""Fig. 10: global traffic engineering across 8 concurrent jobs.

(a) 1:1 oversubscription: without C4P the jobs collide on spine uplinks
and spread widely (paper: 171.93-263.27 Gbps); with C4P every job sits
within a few Gbps of the NVLink-capped peak (paper: 353.86-360.57,
+70.3% on average).

(b) 2:1 (half the spines disabled, DCQCN engaged): C4P keeps the jobs
tightly grouped just below peak (paper: 11.27 Gbps max-min gap, +65.55%
over the baseline).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10


def test_fig10a_one_to_one(benchmark):
    result = run_once(benchmark, lambda: fig10.run(oversub_2to1=False))
    print()
    print(fig10.format_result(result))
    s_with, s_without = result.summary_with, result.summary_without
    benchmark.extra_info["gain_percent"] = 100 * result.mean_gain
    benchmark.extra_info["spread_with_c4p"] = s_with.spread

    # Shape: uniform near-peak with C4P; degraded and spread without.
    assert s_with.minimum > 350.0
    assert s_with.spread < 15.0
    assert s_without.maximum < 300.0
    assert s_without.spread > 15.0
    assert result.mean_gain > 0.5  # paper: +70.3%


def test_fig10b_two_to_one(benchmark):
    result = run_once(benchmark, lambda: fig10.run(oversub_2to1=True))
    print()
    print(fig10.format_result(result))
    s_with = result.summary_with
    benchmark.extra_info["gain_percent"] = 100 * result.mean_gain
    benchmark.extra_info["spread_with_c4p"] = s_with.spread

    # Shape: substantial improvement (paper +65.55%), with a small but
    # non-zero spread from DCQCN rate fluctuation (paper: 11.27 Gbps).
    assert result.mean_gain > 0.4
    assert 1.0 < s_with.spread < 30.0
    assert s_with.mean < 362.0  # congestion costs something vs Fig 10a
