"""Table I: crash-cause distribution of a 4,096-GPU job over one month.

Paper row format: Users' View | Root Cause | Proportion | Local.
The fault campaign samples two years of crashes at the paper's rates;
the tabulation reproduces both the user-facing opacity (nearly
everything is an "NCCL Error") and the ~82.5% locality that makes C4D's
isolate-and-restart strategy viable.
"""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_table1_crash_cause_distribution(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(table1.format_result(result))
    benchmark.extra_info["local_fraction"] = result.local_fraction
    benchmark.extra_info["crashes_per_month"] = result.crashes_per_month

    # Shape assertions: the mix and locality track Table I.
    assert 30 <= result.crashes_per_month <= 50  # ~40 crashes/month
    assert 0.78 <= result.local_fraction <= 0.88  # ~82.5% local
    for row in result.rows:
        assert abs(row.proportion - row.paper_proportion) < 0.06
    # Users' view: >80% of crashes surface as bare "NCCL Error".
    assert result.nccl_error_fraction > 0.8
