"""Fig. 12: tolerance to dynamic link failures.

Eight concurrent allreduce jobs on the 8-uplinks-per-leaf fabric; one
uplink is deactivated mid-run.  Static traffic engineering (planned
paths only, no chunk re-posting, no reallocation) degrades badly — the
paper measures 160-220 Gbps, average 185.76 — while dynamic load
balancing recovers to 290-335 Gbps (average 301.46), close to the 7/8
ideal of 315 Gbps.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import summarize
from repro.experiments import fig12


def test_fig12_static_vs_dynamic_after_failure(benchmark):
    result = run_once(benchmark, fig12.run)
    print()
    print(fig12.format_result(result))
    s_static = result.static.summary_after
    s_dynamic = result.dynamic.summary_after
    benchmark.extra_info["static_mean"] = s_static.mean
    benchmark.extra_info["dynamic_mean"] = s_dynamic.mean
    benchmark.extra_info["gain_percent"] = 100 * result.gain

    # Shape: pre-failure at peak; static TE visibly degraded; dynamic LB
    # recovers close to the 7/8 ideal and clearly beats static.
    pre = summarize(list(result.static.before) + list(result.dynamic.before))
    assert pre.mean > 355.0
    assert s_static.mean < 300.0
    assert s_dynamic.mean > 310.0
    assert result.gain > 0.15
    assert abs(s_dynamic.mean - result.ideal_after) < 40.0
