"""Fig. 7: the communication-slow syndrome in the delay matrix.

Design-section figure: injected degradations must produce exactly the
matrix signatures the paper draws — a single hot cell for a connection
bottleneck, a row+column intersection for a slow worker — and the
analyzer must localize them.
"""

from benchmarks.conftest import run_once
from repro.core.c4d.events import SuspectKind
from repro.experiments import fig7


def test_fig7_delay_matrix_syndrome(benchmark):
    result = run_once(benchmark, fig7.run)
    print()
    print(fig7.format_result(result))
    print()
    print(fig7.render_heatmap(result.matrix))
    benchmark.extra_info["max_ratio"] = result.finding.max_ratio

    # The degraded NIC shows as both an outgoing and an incoming hot
    # cell, which the analyzer fuses into a WORKER suspect at (3, 5).
    assert result.finding.is_anomalous
    assert result.localized
    workers = [s for s in result.finding.suspects if s.kind is SuspectKind.WORKER]
    assert workers
    # The transport's work stealing partially masks the degradation, so
    # the hot cells sit around 2x rather than the raw 4x port ratio.
    assert result.finding.max_ratio >= 1.8
