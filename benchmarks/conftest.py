"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's evaluation (see DESIGN.md §4 for the index).  Benchmarks run the
relevant simulation once under pytest-benchmark (`--benchmark-only`),
print the same rows/series the paper reports, and attach the headline
numbers as ``extra_info`` so they land in pytest-benchmark's JSON
output.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table


def run_once(benchmark, fn):
    """Execute a simulation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, headers, rows, benchmark=None, **extra):
    """Print a paper-style table and stash headline numbers."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))
    if benchmark is not None:
        for key, value in extra.items():
            benchmark.extra_info[key] = value


@pytest.fixture(autouse=True)
def _show_output(capsys):
    """Let the printed tables through even without ``-s``."""
    yield
    with capsys.disabled():
        out, _err = capsys.readouterr()
        if out.strip():
            print(out, end="")
