"""Fig. 11: CNP count received at each bonded port (2:1 configuration).

In the congested 2:1 run, DCQCN's ECN marking converts queue buildup
into Congestion Notification Packets back to the senders; the paper
measures ~15,000 CNP/s per bonded port, fluctuating between 12,500 and
17,500.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig11


def test_fig11_cnp_rate_per_bonded_port(benchmark):
    result = run_once(benchmark, fig11.run)
    print()
    print(fig11.format_result(result))
    benchmark.extra_info["mean_cnp_per_second"] = result.mean

    low, high = result.band
    # Shape: every engaged bonded port sees CNPs at the ~10^4/s scale,
    # in a band around the mean rather than a single spike.
    assert len(result.values) >= 64  # most bonded ports engaged
    assert 8_000 < result.mean < 25_000
    assert low > 0.5 * result.mean
    assert high < 2.0 * result.mean
