"""Fig. 14: performance improvement in real-life training jobs.

The paper's three representative jobs on the 16-node testbed:

* Job1 — GPT-22B, Megatron, TP=8 x DP=16: 74.82 → 86.76 samples/s
  (+15.95%),
* Job2 — Llama-7B, DeepSpeed, pure DP with ZeRO: 156.59 → 178.65
  samples/s (+14.1%),
* Job3 — GPT-175B, Megatron, TP=8 x PP=8 (2 DP groups), gradient
  accumulation 16: no visible improvement, because GA amortizes the
  communication cost 16x.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig14


def test_fig14_training_job_throughput(benchmark):
    result = run_once(benchmark, fig14.run)
    print()
    print(fig14.format_result(result))
    for name, job in result.jobs.items():
        benchmark.extra_info[f"gain_{name}"] = job.gain

    jobs = result.jobs
    # Shape: the two communication-heavy jobs gain ~15%; the GA=16 job
    # does not.
    assert 0.05 < jobs["job1"].gain < 0.60
    assert 0.05 < jobs["job2"].gain < 0.60
    assert jobs["job3"].gain < 0.05
    assert jobs["job1"].gain > jobs["job3"].gain
    assert jobs["job2"].gain > jobs["job3"].gain
    # Jobs 1 and 2 are communication-bound in the baseline (>15% of the
    # iteration; the paper quotes >30% including overlapped phases).
    assert jobs["job1"].baseline_comm_fraction > 0.15
    assert jobs["job2"].baseline_comm_fraction > 0.15
