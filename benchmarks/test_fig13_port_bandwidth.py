"""Fig. 13: per-switch-port bandwidth with/without dynamic load balance.

Reads the leaf switch's uplink byte counters around the induced link
failure of the Fig. 12 experiment.  Without load balancing the flows
from the dead uplink are rerouted onto a few surviving ports (traffic
increment concentrates there while the rest lose bandwidth); with
dynamic load balancing the surviving ports end up near-evenly loaded.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig13


def test_fig13_uplink_bandwidth_distribution(benchmark):
    result = run_once(benchmark, fig13.run)
    print()
    print(fig13.format_result(result))
    benchmark.extra_info["static_imbalance"] = result.static_imbalance
    benchmark.extra_info["dynamic_imbalance"] = result.dynamic_imbalance

    # The dead link carries nothing.
    assert result.static_rates[fig13.FAILED_UPLINK] < 1.0
    assert result.dynamic_rates[fig13.FAILED_UPLINK] < 1.0
    # Without LB the rerouted flows concentrate (large per-port spread);
    # with LB the surviving ports are near-even.
    assert result.static_imbalance > 1.5 * result.dynamic_imbalance
    live_dynamic = {
        k: v for k, v in result.dynamic_rates.items() if k != fig13.FAILED_UPLINK
    }
    mean_dynamic = sum(live_dynamic.values()) / len(live_dynamic)
    assert all(
        abs(v - mean_dynamic) < 0.25 * mean_dynamic for v in live_dynamic.values()
    )
