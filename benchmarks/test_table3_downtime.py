"""Table III: error-induced downtime before/after C4D deployment.

Reproduces both halves of the table — the June 2023 regime (manual
diagnosis, sparse checkpoints, unhardened fleet) and the December 2023
regime (C4D detection in tens of seconds, automated steering, 10-minute
checkpoints, 3.33x lower error rate) — for the paper's 2,400-GPU,
month-long GPT-175B job.
"""

from benchmarks.conftest import run_once
from repro.core.c4d.classifier import CauseBucket
from repro.experiments import table3
from repro.training.lifetime import BASELINE_OPERATIONS, LifetimeConfig, simulate_lifetime


def test_table3_downtime_before_after(benchmark):
    result = run_once(benchmark, table3.run)
    print()
    print(table3.format_result(result))
    benchmark.extra_info["total_before"] = result.total_before
    benchmark.extra_info["total_after"] = result.total_after
    benchmark.extra_info["reduction_factor"] = result.reduction_factor

    before = result.before.as_table()
    # Shape: ~30% before, ~1% after, order-30x reduction, diagnosis the
    # dominant component.
    assert 0.20 < result.total_before < 0.45
    assert result.total_after < 0.03
    assert 10 < result.reduction_factor < 100
    components = {k: v for k, v in before.items() if k in table3.COMPONENTS and k != "Total"}
    assert before["Diagnosis & Isolation"] == max(components.values())


def test_table3_diagnosis_bucket_breakdown(benchmark):
    def run():
        return simulate_lifetime(
            LifetimeConfig(seed=7, duration_seconds=90 * 24 * 3600.0),
            BASELINE_OPERATIONS,
        )

    breakdown = run_once(benchmark, run)
    print()
    print("Diagnosis share by root cause, pre-C4D:")
    for bucket, seconds in sorted(breakdown.diagnosis_by_bucket.items(), key=lambda kv: -kv[1]):
        print(f"  {bucket.value:20s} {100 * seconds / breakdown.duration_seconds:.2f}%")
    # GPU-class buckets (ECC/NVLink + CUDA) are a large share, as in the
    # paper (12.53% of 19.65% diagnosis time in June).
    gpu = breakdown.diagnosis_by_bucket.get(CauseBucket.ECC_NVLINK, 0.0)
    gpu += breakdown.diagnosis_by_bucket.get(CauseBucket.CUDA_ERROR, 0.0)
    assert gpu / breakdown.diagnosis_seconds > 0.3
