"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation disables one mechanism and shows which paper result it is
load-bearing for; see :mod:`repro.experiments.ablations` for the
runners (also reachable as ``python -m repro run ablations``).
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark):
    result = run_once(benchmark, ablations.run)
    print()
    print(ablations.format_result(result))
    benchmark.extra_info["plane_penalty"] = result.plane_rule_on - result.plane_rule_off
    benchmark.extra_info["stealing_gain"] = result.stealing_on / result.stealing_off

    # Plane rule: without it, both QPs of a NIC can land on one receive
    # port (Fig. 9 imbalance).
    assert result.plane_rule_on > 355.0
    assert result.plane_rule_off < result.plane_rule_on - 50.0
    # Work stealing rescues a degraded-port connection.
    assert result.stealing_on > result.stealing_off * 1.3
    # DCQCN model produces CNPs, costs throughput and creates spread.
    assert result.congestion_cnps > 0
    assert result.congestion_on.mean < result.congestion_off.mean
    assert result.congestion_on.spread > result.congestion_off.spread
    # Balanced registry is load-bearing under multi-job contention.
    assert result.registry_c4p.mean > result.registry_ecmp.mean * 1.5
