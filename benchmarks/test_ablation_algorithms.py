"""Ablation: collective algorithm choice under multi-tenant contention.

The paper's benchmarks force the ring algorithm; ACCL also has phased
algorithms.  This ablation shows why the choice matters on a shared
fabric: phased algorithms (halving-doubling) concentrate each phase's
traffic on fewer node pairs, so under cross-job contention their
effective bandwidth profile differs from the pipelined ring even when
the totals match, while the hierarchical variant trades fabric traffic
shape for explicit NVLink stages.
"""

from benchmarks.conftest import emit, run_once
from repro.collective.algorithms import Algorithm, OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.placement import contiguous_ranks
from repro.netsim.units import GIB
from repro.workloads.generator import build_cluster

ALGORITHMS = (Algorithm.RING, Algorithm.HALVING_DOUBLING, Algorithm.HIERARCHICAL)


def run_algorithm(algorithm: Algorithm, use_c4p: bool, ops: int = 5) -> float:
    scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=7)
    context = CollectiveContext(scenario.topology, selector=scenario.selector())
    comm = context.communicator(contiguous_ranks(range(8), 8))
    handles = []
    issued = [0]

    def issue() -> None:
        issued[0] += 1
        context.run_op(
            comm,
            OpType.ALLREDUCE,
            1 * GIB,
            algorithm=algorithm,
            on_complete=finished,
        )

    def finished(handle) -> None:
        handles.append(handle)
        if issued[0] < ops + 1:
            issue()

    issue()
    scenario.network.run()
    measured = [h.busbw_per_nic_gbps for h in handles[1:]]  # drop warmup
    return sum(measured) / len(measured)


def test_ablation_allreduce_algorithms(benchmark):
    def run():
        table = {}
        for algorithm in ALGORITHMS:
            table[algorithm] = {
                use_c4p: run_algorithm(algorithm, use_c4p) for use_c4p in (False, True)
            }
        return table

    table = run_once(benchmark, run)
    rows = [
        (
            algorithm.value,
            f"{table[algorithm][False]:.1f}",
            f"{table[algorithm][True]:.1f}",
        )
        for algorithm in ALGORITHMS
    ]
    emit(
        "Ablation: allreduce algorithm (64 GPUs, busbw Gbps per NIC)",
        ["algorithm", "ECMP", "with C4P"],
        rows,
        benchmark=benchmark,
    )

    ring, hd, hier = (table[a] for a in ALGORITHMS)
    # On the planned fabric, ring and halving-doubling are bandwidth-
    # equivalent (same total traffic, no collisions).
    assert abs(ring[True] - hd[True]) / ring[True] < 0.05
    # Hierarchical pays the explicit NVLink stages.
    assert hier[True] < ring[True]
    # C4P helps every algorithm.
    for algorithm in ALGORITHMS:
        assert table[algorithm][True] > table[algorithm][False]
