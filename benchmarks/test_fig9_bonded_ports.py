"""Fig. 9: balancing traffic between the two bonded physical ports.

Single allreduce (nccl-test style) at 16-128 GPUs.  Without C4P, the
fabric may deliver both of a bonded NIC's flows to the same physical
port on the receiver, halving effective bandwidth; with C4P the
plane-preservation rule pins left-port traffic to left leaves end-to-end
and busbw reaches the NVLink-capped peak (~362 Gbps).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9_bonded_port_balance(benchmark):
    result = run_once(benchmark, fig9.run)
    print()
    print(fig9.format_result(result))
    benchmark.extra_info["peak_with_c4p"] = result.peak_with_c4p
    benchmark.extra_info["worst_without"] = result.worst_without

    for point in result.points:
        # Paper: without C4P "lower than 240 Gbps in most cases"; with
        # C4P "close to the peak value 360 Gbps" (>= 50% gain).
        assert point.busbw_without < 240.0
        assert point.busbw_with > 355.0
        assert point.gain > 0.4
